// Command adaptd serves the trained adaptivity predictor as an always-on
// inference daemon — the paper's §VIII deployment (trained weights shipped
// into hardware decision tables) recast as a model-serving service. On
// first boot it trains a predictor through the experiment harness and
// caches it to -model; later boots (and POST /v1/reload) load the file.
//
// Endpoints (the full v1 route map lives in README.md "Serving the
// model"):
//
//	POST /v1/predict        counter feature vector -> predicted
//	                        configuration ({"batch": [...]} evaluates many
//	                        vectors in one batched kernel call and streams
//	                        per-item results; ?probs=1 adds the
//	                        per-parameter soft-max probabilities; the
//	                        X-Request-Class header or "class" field tags
//	                        the admission class)
//	GET  /v1/designspace    Table I metadata and the serving model's shape
//	GET  /v1/models         active + shadow model identity and the
//	                        shadow's agreement stats
//	POST /v1/models/promote hot-swap the shadow to active (optional
//	                        minAgreement/minCompared evidence gates)
//	GET  /v1/status         SLO snapshot: model fingerprint, per-(path,
//	                        code) request counters, error rates, cache and
//	                        batch stats, windowed per-route latency
//	                        p50/p99/p999, per-class admission counters and
//	                        quantiles, and the shadow section — uptime-
//	                        free, so snapshots diff cleanly
//	GET  /healthz           liveness + model info + cache stats
//	GET  /metrics           Prometheus text: request counts, latency
//	                        histogram, cache hit rate, saturation, shed
//	                        and shadow series, plus the process-wide
//	                        sim/experiment series
//	POST /v1/reload         re-read -model and hot-swap it, zero downtime
//
// With -debug, introspection endpoints are mounted as well: net/http/pprof
// under /debug/pprof/, an expvar-style snapshot at /debug/vars, and a
// Chrome trace_event snapshot of live request spans at /debug/trace.
//
// Usage:
//
//	adaptd [-addr :8080] [-model adaptd.model] [-counter-set advanced|basic]
//	       [-quantized] [-train-scale test|default] [-cache-dir DIR]
//	       [-cache 4096] [-max-inflight 64] [-timeout 5s] [-max-body N]
//	       [-coalesce-window 0] [-coalesce-max 64]
//	       [-admission] [-slo-p99 0] [-admission-rate class=RATE[:BURST]]...
//	       [-shadow candidate.model] [-shadow-queue 1024]
//	       [-debug] [-log-json] [-log-level info] [-manifest out.json]
//	       [-loadgen] [-loadgen-requests N] [-loadgen-conc N]
//	       [-loadgen-pool N] [-loadgen-batch N] [-loadgen-seed N]
//	       [-loadgen-mode closed|open] [-rps N]
//	       [-loadgen-arrivals poisson|pareto] [-loadgen-zipf S]
//	       [-loadgen-mix interactive=0.7,batch=0.2,background=0.1]
//
// (-batch and -seed remain as deprecated aliases for -loadgen-batch and
// -loadgen-seed.)
//
// With -cache-dir, first-boot training runs against the persistent
// simulation-result store (internal/store): a boot interrupted by SIGINT
// mid-dataset resumes from the store on the next boot instead of
// restarting the ~40-minute build from scratch.
//
// With -loadgen the daemon boots normally, points a deterministic seeded
// load generator at itself, prints the throughput/latency report and the
// server metrics, and exits — a reproducible serving benchmark. The
// default closed loop measures capacity; -loadgen-mode open offers load
// at a fixed -rps with Poisson or heavy-tailed Pareto arrivals, which is
// how to observe shedding and overload behaviour.
//
// With -shadow, a second model file is loaded as a shadow: it receives
// duplicated traffic strictly off the request path and its agreement with
// the active model streams through /v1/models, /v1/status and /metrics
// until POST /v1/models/promote swaps it in.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		modelPath  = flag.String("model", "adaptd.model", "predictor file: loaded if present, else trained and saved")
		setName    = flag.String("counter-set", "advanced", "counter set: advanced or basic")
		quantized  = flag.Bool("quantized", false, "serve the 8-bit quantized model (§VIII hardware form)")
		trainScale = flag.String("train-scale", "test", "first-boot training scale: test or default")
		cacheDir   = flag.String("cache-dir", "", "persistent simulation-result store for first-boot training (empty disables)")
		cacheSize  = flag.Int("cache", 4096, "LRU decision-cache entries (0 disables)")
		maxInfl    = flag.Int("max-inflight", 64, "concurrent predicts before 429 backpressure")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		maxBody    = flag.Int64("max-body", 1<<20, "request body byte limit")
		coWindow   = flag.Duration("coalesce-window", 0, "micro-batching window for concurrent single predicts (0 disables)")
		coMax      = flag.Int("coalesce-max", 64, "max vectors per coalesced kernel call")
		debug      = flag.Bool("debug", false, "mount /debug/pprof/, /debug/vars and /debug/trace")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error")
		loadgen    = flag.Bool("loadgen", false, "boot, benchmark the server with seeded load, print a report, exit")
		lgRequests = flag.Int("loadgen-requests", 2000, "loadgen: total requests")
		lgConc     = flag.Int("loadgen-conc", 8, "loadgen: concurrent workers (closed mode)")
		lgPool     = flag.Int("loadgen-pool", 64, "loadgen: distinct feature vectors (repeats exercise the cache)")
		lgMode     = flag.String("loadgen-mode", "closed", "loadgen replay discipline: closed (workers) or open (fixed arrival rate)")
		rps        = flag.Float64("rps", 0, "loadgen: open-loop target arrivals per second (required with -loadgen-mode open)")
		lgArrivals = flag.String("loadgen-arrivals", "poisson", "loadgen open-loop inter-arrival law: poisson or pareto (heavy-tailed)")
		lgZipf     = flag.Float64("loadgen-zipf", 0, "loadgen: Zipf popularity exponent over the pool (0 = uniform)")
		lgMix      = flag.String("loadgen-mix", "", "loadgen: class mix as class=share pairs, e.g. interactive=0.7,batch=0.2,background=0.1 (empty = that default)")
		admitOn    = flag.Bool("admission", false, "enable per-class admission control with the default shed-lowest-first ladder")
		sloP99     = flag.Duration("slo-p99", 0, "admission: windowed /v1/predict p99 target defended by SLO shedding (0 disables; implies -admission)")
		shadowPath = flag.String("shadow", "", "load this model file as a shadow: evaluated on duplicated traffic off the request path")
		shadowQ    = flag.Int("shadow-queue", 1024, "shadow duplication queue length (overflow drops duplicates)")
		manifest   = flag.String("manifest", "", "write a run manifest to this file; defaults to manifest-adaptd.json under -cache-dir")
	)
	var lgBatch int
	flag.IntVar(&lgBatch, "loadgen-batch", 1, "loadgen: feature vectors per request (>= 2 uses the batch payload)")
	flag.IntVar(&lgBatch, "batch", 1, "deprecated alias for -loadgen-batch")
	var lgSeed uint64
	flag.Uint64Var(&lgSeed, "loadgen-seed", 1, "loadgen schedule seed")
	flag.Uint64Var(&lgSeed, "seed", 1, "deprecated alias for -loadgen-seed")
	admitRates := map[serve.Class]serve.ClassPolicy{}
	flag.Func("admission-rate", "admission token bucket as class=RATE[:BURST], repeatable (implies -admission)", func(v string) error {
		class, pol, err := parseRate(v)
		if err != nil {
			return err
		}
		admitRates[class] = pol
		return nil
	})
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logJSON, obs.ParseLevel(*logLevel))
	die := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	set := counters.Advanced
	switch *setName {
	case "advanced":
	case "basic":
		set = counters.Basic
	default:
		die(fmt.Errorf("unknown -counter-set %q (want advanced or basic)", *setName))
	}

	var tracer *obs.Tracer
	if *debug {
		tracer = obs.DefaultTracer()
		tracer.Enable()
	}

	manifestPath := *manifest
	if manifestPath == "" && *cacheDir != "" {
		manifestPath = filepath.Join(*cacheDir, "manifest-adaptd.json")
	}

	// The signal context exists before first-boot training so a SIGINT
	// during the (potentially long) dataset build exits promptly instead of
	// waiting for training to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	bootStart := time.Now()
	pred, err := bootPredictor(ctx, logger, *modelPath, set, *trainScale, *cacheDir)
	if err != nil {
		die(err)
	}
	eng, err := serve.NewEngine(pred, *quantized)
	if err != nil {
		die(err)
	}
	opts := []serve.Option{
		serve.WithModelPath(*modelPath),
		serve.WithCacheSize(*cacheSize),
		serve.WithMaxBody(*maxBody),
		serve.WithTimeout(*timeout),
		serve.WithMaxInflight(*maxInfl),
		serve.WithCoalescing(*coWindow, *coMax),
		serve.WithTracer(tracer),
		serve.WithShadowQueue(*shadowQ),
	}
	if *debug {
		opts = append(opts, serve.WithDebug())
	}
	admission := *admitOn || *sloP99 > 0 || len(admitRates) > 0
	if admission {
		cfg := serve.DefaultAdmissionConfig()
		cfg.TargetP99 = *sloP99
		for class, pol := range admitRates {
			base := cfg.Classes[class]
			base.Rate, base.Burst = pol.Rate, pol.Burst
			cfg.Classes[class] = base
		}
		opts = append(opts, serve.WithAdmission(cfg))
	}
	if *shadowPath != "" {
		shadowEng, err := loadShadow(*shadowPath, set, *quantized)
		if err != nil {
			die(err)
		}
		opts = append(opts, serve.WithShadow(shadowEng, *shadowPath))
		logger.Info("shadow model loaded", "path", *shadowPath, "version", shadowEng.Version())
	}
	srv := serve.New(eng, opts...)
	defer srv.Close()
	mode := "float64"
	if *quantized {
		mode = "8-bit quantized"
	}
	logger.Info("serving model", "mode", mode, "counters", eng.Set().String(),
		"weights", eng.WeightCount(), "dim", eng.Dim(), "debug", *debug)

	// The manifest's deterministic section holds the serving configuration
	// and the model fingerprint; boot time (which covers first-boot
	// training when the model file was absent) is timing.
	var man *obs.Manifest
	if manifestPath != "" {
		man = obs.NewManifest("adaptd")
		man.SetDet("counterSet", set.String())
		man.SetDet("quantized", *quantized)
		man.SetDet("trainScale", *trainScale)
		man.SetDet("modelVersion", eng.Version())
		man.SetDet("cacheSize", *cacheSize)
		man.SetDet("maxInflight", *maxInfl)
		man.SetDet("coalesceWindowNS", int64(*coWindow))
		man.SetDet("coalesceMax", *coMax)
		man.SetDet("admission", admission)
		man.SetDet("sloP99NS", int64(*sloP99))
		man.SetDet("shadow", *shadowPath)
		man.SetTiming("bootSeconds", time.Since(bootStart).Seconds())
	}
	writeManifest := func() {
		if man == nil {
			return
		}
		if err := man.WriteFile(manifestPath); err != nil {
			logger.Error("writing manifest", "err", err)
			return
		}
		logger.Info("manifest written", "path", manifestPath)
	}

	if *loadgen {
		mix, err := parseMix(*lgMix)
		if err != nil {
			die(err)
		}
		lg := serve.LoadGen{
			Requests:    *lgRequests,
			Concurrency: *lgConc,
			Seed:        lgSeed,
			Pool:        serve.SyntheticFeatures(eng.Dim(), *lgPool, lgSeed),
			Batch:       lgBatch,
			Mode:        *lgMode,
			RPS:         *rps,
			Arrivals:    *lgArrivals,
			ZipfS:       *lgZipf,
			Mix:         mix,
		}
		// Loadgen binds its own loopback port: it benchmarks the serving
		// stack in-process rather than exposing -addr.
		runLoadgen(logger, srv, man, lg, *lgPool)
		writeManifest()
		return
	}
	writeManifest()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *timeout + 5*time.Second,
		WriteTimeout:      *timeout + 5*time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		die(err)
	case <-ctx.Done():
	}
	logger.Info("signal received; draining connections")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		die(fmt.Errorf("shutdown: %w", err))
	}
	logger.Info("shut down cleanly", "cacheHitRate", fmt.Sprintf("%.1f%%", 100*srv.HitRate()))
}

// bootPredictor loads the model file if it exists; otherwise it trains one
// through the experiment harness at the requested scale (cancellable via
// ctx) and saves it. With cacheDir, the training dataset is built against
// the persistent result store there, so an interrupted first boot resumes
// mid-dataset instead of restarting.
func bootPredictor(ctx context.Context, logger *slog.Logger, path string, set counters.Set, scaleName, cacheDir string) (*core.Predictor, error) {
	if f, err := os.Open(path); err == nil {
		defer f.Close()
		pred, err := core.LoadPredictor(f)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w (delete it to retrain)", path, err)
		}
		if pred.Set != set {
			return nil, fmt.Errorf("model %s was trained on the %q counter set but -counter-set is %q; retrain or switch the flag", path, pred.Set, set)
		}
		logger.Info("loaded predictor", "path", path)
		return pred, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("opening %s: %w", path, err)
	}

	sc := experiment.TestScale()
	if scaleName == "default" {
		sc = experiment.DefaultScale()
	}
	var st *store.Store
	if cacheDir != "" {
		var err error
		if st, err = store.Open(cacheDir); err != nil {
			// ErrLocked already names the lock path and what to do about
			// it; the flag context is all that's missing.
			return nil, fmt.Errorf("opening -cache-dir: %w", err)
		}
		defer st.Close()
		logger.Info("result store open", "dir", cacheDir, "records", st.Len())
	}
	logger.Info("no model; training", "path", path, "scale", scaleName,
		"programs", len(sc.Programs), "phasesPerProgram", sc.PhasesPerProgram)
	prog := &obs.Progress{Logger: logger}
	experiment.SetProgress(func(stage string, done, total int) {
		prog.Observe(stage, done, total)
	})
	defer experiment.SetProgress(nil)
	ds, err := experiment.Build(ctx, sc, experiment.WithStore(st))
	if err != nil {
		return nil, err
	}
	if st != nil {
		s := st.Stats()
		logger.Info("store stats", "storeHits", s.Hits, "storeMisses", s.Misses,
			"records", s.Records, "bytesWritten", s.BytesWritten)
	}
	pred, err := ds.TrainAllCtx(ctx, set)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := pred.Save(f); err != nil {
		return nil, err
	}
	logger.Info("trained and saved predictor", "path", path, "weights", pred.WeightCount())
	return pred, nil
}

// runLoadgen serves on a local listener and fires the seeded load
// generator at it, printing the report (per-class rows included), the
// /v1/status windowed latency quantiles, the shadow agreement line when
// a shadow is mounted, and the server's own metrics. When man is
// non-nil, the schedule joins its deterministic section and every
// measured outcome (counts included — 429s and sheds are
// timing-dependent) joins timing.
func runLoadgen(logger *slog.Logger, srv *serve.Server, man *obs.Manifest, lg serve.LoadGen, pool int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	logger.Info("loadgen", "mode", lg.Mode, "requests", lg.Requests, "workers", lg.Concurrency,
		"rps", lg.RPS, "arrivals", lg.Arrivals, "zipf", lg.ZipfS,
		"pool", pool, "batch", lg.Batch, "seed", lg.Seed)
	rep, err := lg.Run("http://"+ln.Addr().String(), nil)
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Printf("server cache hit rate: %.1f%%\n\n", 100*srv.HitRate())

	// Let the shadow worker drain its queue before reading agreement —
	// duplicated traffic is asynchronous by contract, so the final few
	// comparisons may land after the last response.
	if !srv.ShadowDrain(30 * time.Second) {
		logger.Warn("shadow queue did not drain within 30s; agreement stats may be partial")
	}

	status := fetchStatus(logger, "http://"+ln.Addr().String())
	if status != nil {
		fmt.Println("latency SLOs from /v1/status (windowed):")
		for _, rl := range status.Latency {
			if rl.TotalCount == 0 {
				continue
			}
			fmt.Printf("  slo %-16s p50=%.6fs p99=%.6fs p999=%.6fs requests=%d\n",
				rl.Path, rl.P50Seconds, rl.P99Seconds, rl.P999Seconds, rl.TotalCount)
		}
		for _, cs := range status.Admission.Classes {
			if cs.Requests == 0 && cs.TotalCount == 0 {
				continue
			}
			fmt.Printf("  class %-12s requests=%d shed=%d p50=%.6fs p99=%.6fs\n",
				cs.Class, cs.Requests, cs.Shed, cs.P50Seconds, cs.P99Seconds)
		}
		if sh := status.Shadow; sh != nil {
			fmt.Printf("  shadow %-12s compared=%d dropped=%d paramAgreement=%.3f decisionMatch=%.3f\n",
				sh.Source, sh.Compared, sh.Dropped, sh.ParamAgreement, sh.DecisionMatchRate)
		}
		fmt.Println()
	}
	fmt.Println(srv.MetricsText())

	if man != nil {
		man.SetDet("loadgen.mode", lg.Mode)
		man.SetDet("loadgen.requests", lg.Requests)
		man.SetDet("loadgen.concurrency", lg.Concurrency)
		man.SetDet("loadgen.rps", lg.RPS)
		man.SetDet("loadgen.arrivals", lg.Arrivals)
		man.SetDet("loadgen.zipf", lg.ZipfS)
		man.SetDet("loadgen.pool", pool)
		man.SetDet("loadgen.batch", lg.Batch)
		man.SetDet("loadgen.seed", lg.Seed)
		man.SetTiming("loadgen.elapsedSeconds", rep.Elapsed.Seconds())
		man.SetTiming("loadgen.requestsPerSec", rep.RequestsPerSec)
		man.SetTiming("loadgen.p50Seconds", rep.P50.Seconds())
		man.SetTiming("loadgen.p95Seconds", rep.P95.Seconds())
		man.SetTiming("loadgen.maxSeconds", rep.Max.Seconds())
		man.SetTiming("loadgen.ok", float64(rep.OK))
		man.SetTiming("loadgen.rejected", float64(rep.Rejected))
		man.SetTiming("loadgen.shed", float64(rep.Shed))
		man.SetTiming("loadgen.errors", float64(rep.ClientErr+rep.ServerErr+rep.Transport))
		man.SetTiming("loadgen.cacheHits", float64(rep.CacheHits))
		if status != nil {
			for _, rl := range status.Latency {
				if rl.TotalCount == 0 {
					continue
				}
				man.SetTiming("slo."+rl.Path+".p50Seconds", rl.P50Seconds)
				man.SetTiming("slo."+rl.Path+".p99Seconds", rl.P99Seconds)
				man.SetTiming("slo."+rl.Path+".p999Seconds", rl.P999Seconds)
			}
			for _, cs := range status.Admission.Classes {
				if cs.TotalCount == 0 {
					continue
				}
				man.SetTiming("slo.class."+cs.Class+".p50Seconds", cs.P50Seconds)
				man.SetTiming("slo.class."+cs.Class+".p99Seconds", cs.P99Seconds)
				man.SetTiming("slo.class."+cs.Class+".shed", float64(cs.Shed))
			}
			if sh := status.Shadow; sh != nil {
				man.SetTiming("shadow.compared", float64(sh.Compared))
				man.SetTiming("shadow.dropped", float64(sh.Dropped))
				man.SetTiming("shadow.paramAgreement", sh.ParamAgreement)
				man.SetTiming("shadow.decisionMatchRate", sh.DecisionMatchRate)
			}
		}
	}
}

// parseRate parses an -admission-rate value of the form
// class=RATE[:BURST] (RATE in requests per second; BURST defaults to
// the policy default, ceil(rate) but at least 1).
func parseRate(v string) (serve.Class, serve.ClassPolicy, error) {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return 0, serve.ClassPolicy{}, fmt.Errorf("admission-rate %q: want class=RATE[:BURST]", v)
	}
	class, ok := serve.ParseClass(name)
	if !ok {
		return 0, serve.ClassPolicy{}, fmt.Errorf("admission-rate %q: unknown class %q", v, name)
	}
	rateStr, burstStr, hasBurst := strings.Cut(spec, ":")
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate <= 0 {
		return 0, serve.ClassPolicy{}, fmt.Errorf("admission-rate %q: bad rate %q", v, rateStr)
	}
	pol := serve.ClassPolicy{Rate: rate}
	if hasBurst {
		burst, err := strconv.ParseFloat(burstStr, 64)
		if err != nil || burst <= 0 {
			return 0, serve.ClassPolicy{}, fmt.Errorf("admission-rate %q: bad burst %q", v, burstStr)
		}
		pol.Burst = burst
	}
	return class, pol, nil
}

// parseMix parses a -loadgen-mix value: comma-separated class=share
// pairs. Empty input returns the default 70/20/10 mix.
func parseMix(s string) (serve.ClassMix, error) {
	if s == "" {
		return serve.DefaultClassMix(), nil
	}
	var mix serve.ClassMix
	for _, pair := range strings.Split(s, ",") {
		name, shareStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return mix, fmt.Errorf("loadgen-mix %q: want class=share pairs", s)
		}
		class, okc := serve.ParseClass(name)
		if !okc || name == "" {
			return mix, fmt.Errorf("loadgen-mix %q: unknown class %q", s, name)
		}
		share, err := strconv.ParseFloat(shareStr, 64)
		if err != nil || share < 0 {
			return mix, fmt.Errorf("loadgen-mix %q: bad share %q", s, shareStr)
		}
		mix[class] = share
	}
	return mix, nil
}

// loadShadow loads a candidate model file as a shadow engine, holding it
// to the same counter-set and quantization discipline as the active
// model so promotion is always a like-for-like swap.
func loadShadow(path string, set counters.Set, quantized bool) (*serve.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening -shadow %s: %w", path, err)
	}
	defer f.Close()
	pred, err := core.LoadPredictor(f)
	if err != nil {
		return nil, fmt.Errorf("loading -shadow %s: %w", path, err)
	}
	if pred.Set != set {
		return nil, fmt.Errorf("shadow %s was trained on the %q counter set but -counter-set is %q", path, pred.Set, set)
	}
	return serve.NewEngine(pred, quantized)
}

// fetchStatus reads /v1/status; a failure logs and returns nil rather
// than aborting a finished benchmark run.
func fetchStatus(logger *slog.Logger, baseURL string) *serve.StatusResponse {
	resp, err := http.Get(baseURL + "/v1/status")
	if err != nil {
		logger.Error("fetching /v1/status", "err", err)
		return nil
	}
	defer resp.Body.Close()
	var sr serve.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		logger.Error("decoding /v1/status", "err", err)
		return nil
	}
	return &sr
}
