// Command adaptd serves the trained adaptivity predictor as an always-on
// inference daemon — the paper's §VIII deployment (trained weights shipped
// into hardware decision tables) recast as a model-serving service. On
// first boot it trains a predictor through the experiment harness and
// caches it to -model; later boots (and POST /v1/reload) load the file.
//
// Endpoints:
//
//	POST /v1/predict     counter feature vector -> predicted configuration
//	                     ({"batch": [...]} evaluates many vectors in one
//	                     batched kernel call and streams per-item results;
//	                     ?probs=1 adds the per-parameter soft-max
//	                     probabilities)
//	GET  /v1/designspace Table I metadata and the serving model's shape
//	GET  /v1/status      SLO snapshot: model fingerprint, per-(path, code)
//	                     request counters, error rates, cache and batch
//	                     stats, and windowed per-route latency
//	                     p50/p99/p999 — uptime-free, so snapshots diff
//	                     cleanly
//	GET  /healthz        liveness + model info + cache stats
//	GET  /metrics        Prometheus text: request counts, latency
//	                     histogram, cache hit rate, saturation, plus the
//	                     process-wide sim/experiment series
//	POST /v1/reload      re-read -model and hot-swap it, zero downtime
//
// With -debug, introspection endpoints are mounted as well: net/http/pprof
// under /debug/pprof/, an expvar-style snapshot at /debug/vars, and a
// Chrome trace_event snapshot of live request spans at /debug/trace.
//
// Usage:
//
//	adaptd [-addr :8080] [-model adaptd.model] [-counter-set advanced|basic]
//	       [-quantized] [-train-scale test|default] [-cache-dir DIR]
//	       [-cache 4096] [-max-inflight 64] [-timeout 5s] [-max-body N]
//	       [-coalesce-window 0] [-coalesce-max 64]
//	       [-debug] [-log-json] [-log-level info] [-manifest out.json]
//	       [-loadgen] [-loadgen-requests N] [-loadgen-conc N]
//	       [-loadgen-pool N] [-batch N] [-seed N]
//
// With -cache-dir, first-boot training runs against the persistent
// simulation-result store (internal/store): a boot interrupted by SIGINT
// mid-dataset resumes from the store on the next boot instead of
// restarting the ~40-minute build from scratch.
//
// With -loadgen the daemon boots normally, points a deterministic seeded
// load generator at itself, prints the throughput/latency report and the
// server metrics, and exits — a reproducible serving benchmark.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		modelPath  = flag.String("model", "adaptd.model", "predictor file: loaded if present, else trained and saved")
		setName    = flag.String("counter-set", "advanced", "counter set: advanced or basic")
		quantized  = flag.Bool("quantized", false, "serve the 8-bit quantized model (§VIII hardware form)")
		trainScale = flag.String("train-scale", "test", "first-boot training scale: test or default")
		cacheDir   = flag.String("cache-dir", "", "persistent simulation-result store for first-boot training (empty disables)")
		cacheSize  = flag.Int("cache", 4096, "LRU decision-cache entries (0 disables)")
		maxInfl    = flag.Int("max-inflight", 64, "concurrent predicts before 429 backpressure")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		maxBody    = flag.Int64("max-body", 1<<20, "request body byte limit")
		coWindow   = flag.Duration("coalesce-window", 0, "micro-batching window for concurrent single predicts (0 disables)")
		coMax      = flag.Int("coalesce-max", 64, "max vectors per coalesced kernel call")
		debug      = flag.Bool("debug", false, "mount /debug/pprof/, /debug/vars and /debug/trace")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error")
		loadgen    = flag.Bool("loadgen", false, "boot, benchmark the server with seeded load, print a report, exit")
		lgRequests = flag.Int("loadgen-requests", 2000, "loadgen: total requests")
		lgConc     = flag.Int("loadgen-conc", 8, "loadgen: concurrent workers")
		lgPool     = flag.Int("loadgen-pool", 64, "loadgen: distinct feature vectors (repeats exercise the cache)")
		lgBatch    = flag.Int("batch", 1, "loadgen: feature vectors per request (>= 2 uses the batch payload)")
		seed       = flag.Uint64("seed", 1, "loadgen schedule seed")
		manifest   = flag.String("manifest", "", "write a run manifest to this file; defaults to manifest-adaptd.json under -cache-dir")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logJSON, obs.ParseLevel(*logLevel))
	die := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	set := counters.Advanced
	switch *setName {
	case "advanced":
	case "basic":
		set = counters.Basic
	default:
		die(fmt.Errorf("unknown -counter-set %q (want advanced or basic)", *setName))
	}

	var tracer *obs.Tracer
	if *debug {
		tracer = obs.DefaultTracer()
		tracer.Enable()
	}

	manifestPath := *manifest
	if manifestPath == "" && *cacheDir != "" {
		manifestPath = filepath.Join(*cacheDir, "manifest-adaptd.json")
	}

	// The signal context exists before first-boot training so a SIGINT
	// during the (potentially long) dataset build exits promptly instead of
	// waiting for training to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	bootStart := time.Now()
	pred, err := bootPredictor(ctx, logger, *modelPath, set, *trainScale, *cacheDir)
	if err != nil {
		die(err)
	}
	eng, err := serve.NewEngine(pred, *quantized)
	if err != nil {
		die(err)
	}
	srv := serve.New(eng, serve.Config{
		ModelPath:      *modelPath,
		Quantized:      *quantized,
		CacheSize:      *cacheSize,
		MaxBody:        *maxBody,
		Timeout:        *timeout,
		MaxInflight:    *maxInfl,
		CoalesceWindow: *coWindow,
		CoalesceMax:    *coMax,
		Debug:          *debug,
		Tracer:         tracer,
	})
	defer srv.Close()
	mode := "float64"
	if *quantized {
		mode = "8-bit quantized"
	}
	logger.Info("serving model", "mode", mode, "counters", eng.Set().String(),
		"weights", eng.WeightCount(), "dim", eng.Dim(), "debug", *debug)

	// The manifest's deterministic section holds the serving configuration
	// and the model fingerprint; boot time (which covers first-boot
	// training when the model file was absent) is timing.
	var man *obs.Manifest
	if manifestPath != "" {
		man = obs.NewManifest("adaptd")
		man.SetDet("counterSet", set.String())
		man.SetDet("quantized", *quantized)
		man.SetDet("trainScale", *trainScale)
		man.SetDet("modelVersion", eng.Version())
		man.SetDet("cacheSize", *cacheSize)
		man.SetDet("maxInflight", *maxInfl)
		man.SetDet("coalesceWindowNS", int64(*coWindow))
		man.SetDet("coalesceMax", *coMax)
		man.SetTiming("bootSeconds", time.Since(bootStart).Seconds())
	}
	writeManifest := func() {
		if man == nil {
			return
		}
		if err := man.WriteFile(manifestPath); err != nil {
			logger.Error("writing manifest", "err", err)
			return
		}
		logger.Info("manifest written", "path", manifestPath)
	}

	if *loadgen {
		// Loadgen binds its own loopback port: it benchmarks the serving
		// stack in-process rather than exposing -addr.
		runLoadgen(logger, srv, man, *lgRequests, *lgConc, *lgPool, *lgBatch, *seed)
		writeManifest()
		return
	}
	writeManifest()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *timeout + 5*time.Second,
		WriteTimeout:      *timeout + 5*time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		die(err)
	case <-ctx.Done():
	}
	logger.Info("signal received; draining connections")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		die(fmt.Errorf("shutdown: %w", err))
	}
	logger.Info("shut down cleanly", "cacheHitRate", fmt.Sprintf("%.1f%%", 100*srv.HitRate()))
}

// bootPredictor loads the model file if it exists; otherwise it trains one
// through the experiment harness at the requested scale (cancellable via
// ctx) and saves it. With cacheDir, the training dataset is built against
// the persistent result store there, so an interrupted first boot resumes
// mid-dataset instead of restarting.
func bootPredictor(ctx context.Context, logger *slog.Logger, path string, set counters.Set, scaleName, cacheDir string) (*core.Predictor, error) {
	if f, err := os.Open(path); err == nil {
		defer f.Close()
		pred, err := core.LoadPredictor(f)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w (delete it to retrain)", path, err)
		}
		if pred.Set != set {
			return nil, fmt.Errorf("model %s was trained on the %q counter set but -counter-set is %q; retrain or switch the flag", path, pred.Set, set)
		}
		logger.Info("loaded predictor", "path", path)
		return pred, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("opening %s: %w", path, err)
	}

	sc := experiment.TestScale()
	if scaleName == "default" {
		sc = experiment.DefaultScale()
	}
	var st *store.Store
	if cacheDir != "" {
		var err error
		if st, err = store.Open(cacheDir); err != nil {
			// ErrLocked already names the lock path and what to do about
			// it; the flag context is all that's missing.
			return nil, fmt.Errorf("opening -cache-dir: %w", err)
		}
		defer st.Close()
		logger.Info("result store open", "dir", cacheDir, "records", st.Len())
	}
	logger.Info("no model; training", "path", path, "scale", scaleName,
		"programs", len(sc.Programs), "phasesPerProgram", sc.PhasesPerProgram)
	prog := &obs.Progress{Logger: logger}
	experiment.SetProgress(func(stage string, done, total int) {
		prog.Observe(stage, done, total)
	})
	defer experiment.SetProgress(nil)
	ds, err := experiment.Build(ctx, sc, experiment.WithStore(st))
	if err != nil {
		return nil, err
	}
	if st != nil {
		s := st.Stats()
		logger.Info("store stats", "storeHits", s.Hits, "storeMisses", s.Misses,
			"records", s.Records, "bytesWritten", s.BytesWritten)
	}
	pred, err := ds.TrainAllCtx(ctx, set)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := pred.Save(f); err != nil {
		return nil, err
	}
	logger.Info("trained and saved predictor", "path", path, "weights", pred.WeightCount())
	return pred, nil
}

// runLoadgen serves on a local listener and fires the seeded load
// generator at it, printing the report, the /v1/status windowed latency
// quantiles and the server's own metrics. When man is non-nil, the
// schedule joins its deterministic section and every measured outcome
// (counts included — 429s are timing-dependent) joins timing.
func runLoadgen(logger *slog.Logger, srv *serve.Server, man *obs.Manifest, requests, conc, pool, batch int, seed uint64) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	eng := srv.Engine()
	lg := serve.LoadGen{
		Requests:    requests,
		Concurrency: conc,
		Seed:        seed,
		Pool:        serve.SyntheticFeatures(eng.Dim(), pool, seed),
		Batch:       batch,
	}
	logger.Info("loadgen", "requests", requests, "workers", conc, "pool", pool, "batch", batch, "seed", seed)
	rep, err := lg.Run("http://"+ln.Addr().String(), &http.Client{Timeout: 30 * time.Second})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Printf("server cache hit rate: %.1f%%\n\n", 100*srv.HitRate())

	status := fetchStatus(logger, "http://"+ln.Addr().String())
	if status != nil {
		fmt.Println("latency SLOs from /v1/status (windowed):")
		for _, rl := range status.Latency {
			if rl.TotalCount == 0 {
				continue
			}
			fmt.Printf("  slo %-16s p50=%.6fs p99=%.6fs p999=%.6fs requests=%d\n",
				rl.Path, rl.P50Seconds, rl.P99Seconds, rl.P999Seconds, rl.TotalCount)
		}
		fmt.Println()
	}
	fmt.Println(srv.MetricsText())

	if man != nil {
		man.SetDet("loadgen.requests", requests)
		man.SetDet("loadgen.concurrency", conc)
		man.SetDet("loadgen.pool", pool)
		man.SetDet("loadgen.batch", batch)
		man.SetDet("loadgen.seed", seed)
		man.SetTiming("loadgen.elapsedSeconds", rep.Elapsed.Seconds())
		man.SetTiming("loadgen.requestsPerSec", rep.RequestsPerSec)
		man.SetTiming("loadgen.p50Seconds", rep.P50.Seconds())
		man.SetTiming("loadgen.p95Seconds", rep.P95.Seconds())
		man.SetTiming("loadgen.maxSeconds", rep.Max.Seconds())
		man.SetTiming("loadgen.ok", float64(rep.OK))
		man.SetTiming("loadgen.rejected", float64(rep.Rejected))
		man.SetTiming("loadgen.errors", float64(rep.ClientErr+rep.ServerErr+rep.Transport))
		man.SetTiming("loadgen.cacheHits", float64(rep.CacheHits))
		if status != nil {
			for _, rl := range status.Latency {
				if rl.TotalCount == 0 {
					continue
				}
				man.SetTiming("slo."+rl.Path+".p50Seconds", rl.P50Seconds)
				man.SetTiming("slo."+rl.Path+".p99Seconds", rl.P99Seconds)
				man.SetTiming("slo."+rl.Path+".p999Seconds", rl.P999Seconds)
			}
		}
	}
}

// fetchStatus reads /v1/status; a failure logs and returns nil rather
// than aborting a finished benchmark run.
func fetchStatus(logger *slog.Logger, baseURL string) *serve.StatusResponse {
	resp, err := http.Get(baseURL + "/v1/status")
	if err != nil {
		logger.Error("fetching /v1/status", "err", err)
		return nil
	}
	defer resp.Body.Close()
	var sr serve.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		logger.Error("decoding /v1/status", "err", err)
		return nil
	}
	return &sr
}
