// Command phases runs the phase-analysis pipeline for one benchmark:
// it slices the program into intervals, computes basic-block vectors,
// extracts representative phases with SimPoint-style clustering, and
// reports what the online working-set-signature detector would have
// flagged — the stage-1 machinery of the paper's controller.
//
// Usage:
//
//	phases [-program gcc] [-intervals 40] [-interval-insts 30000]
//	       [-k 10] [-threshold 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/phase"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phases: ")
	var (
		program   = flag.String("program", "gcc", "benchmark name")
		perPhase  = flag.Int("intervals", 4, "intervals per generator phase")
		ivInsts   = flag.Int("interval-insts", 30000, "instructions per interval")
		k         = flag.Int("k", 10, "maximum clusters (SimPoint phases)")
		threshold = flag.Float64("threshold", 0.5, "online detector threshold")
	)
	flag.Parse()
	if !trace.IsBenchmark(*program) {
		log.Fatalf("unknown benchmark %q", *program)
	}

	det, err := phase.NewDetector(1024, *threshold)
	if err != nil {
		log.Fatal(err)
	}

	var bbvs [][]float64
	var online []bool
	var summaries []trace.Stats
	for ph := 0; ph < trace.PhasesPerProgram; ph++ {
		g, err := trace.NewGenerator(*program, ph)
		if err != nil {
			log.Fatal(err)
		}
		for iv := 0; iv < *perPhase; iv++ {
			insts := g.Interval(*ivInsts)
			bbvs = append(bbvs, phase.BBV(insts))
			summaries = append(summaries, trace.Measure(insts))
			for i := range insts {
				det.Observe(insts[i])
			}
			online = append(online, det.EndInterval())
		}
	}

	ex, err := phase.Extract(bbvs, *k, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d intervals of %d instructions -> %d phases\n",
		*program, len(bbvs), *ivInsts, ex.Phases())
	fmt.Println("interval  cluster  mem%  fp%  br%  data-KB  code-KB  online-change")
	for i, c := range ex.Assignments {
		mark := ""
		if online[i] {
			mark = "  <-- detector fired"
		}
		st := summaries[i]
		fmt.Printf("%8d %8d %5.0f %4.0f %4.1f %8.0f %8.0f%s\n",
			i, c, 100*st.MemFrac, 100*st.FpFrac, 100*st.BranchDensity,
			st.DataFootprintKB, st.CodeFootprintKB, mark)
	}
	fmt.Println("\nphase  weight  representative-interval")
	for c := range ex.Representatives {
		fmt.Printf("%5d  %5.1f%%  %d\n", c, 100*ex.Weights[c], ex.Representatives[c])
	}
	fmt.Printf("\nonline detector: %d/%d intervals flagged as phase changes\n", det.Changes, det.Intervals)
}
