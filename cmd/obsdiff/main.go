// Command obsdiff compares two run manifests written by report, adaptd
// or the bench harness (-manifest / REPRO_MANIFEST). The deterministic
// sections must match exactly — the first differing field is named and
// the command exits 1, which is how verify.sh proves that a cold and a
// warm replay of the same configuration describe the same computation.
// Timing sections are informational: shared keys are printed as a
// before/after table, and wall-clock keys ("...Seconds") are summarised
// as a benchdiff-style geometric-mean speedup.
//
// Usage:
//
//	obsdiff old.json new.json
//	obsdiff -threshold 10 old.json new.json
//
// With -threshold PCT the command also exits 1 when the geomean
// wall-clock speedup falls below 1-PCT/100 — a drop-in CI regression
// gate in the spirit of scripts/benchdiff.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	threshold := flag.Float64("threshold", 0, "exit 1 when the geomean wall-clock speedup falls below 1-PCT/100 (0 disables)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: obsdiff [-threshold PCT] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := obs.LoadManifest(flag.Arg(0))
	if err != nil {
		die(err)
	}
	new, err := obs.LoadManifest(flag.Arg(1))
	if err != nil {
		die(err)
	}

	if field := obs.DiffDeterministic(old, new); field != "" {
		fmt.Printf("DETERMINISTIC MISMATCH at %s\n", field)
		fmt.Printf("  old: %s\n", renderField(old, field))
		fmt.Printf("  new: %s\n", renderField(new, field))
		os.Exit(1)
	}
	fmt.Printf("deterministic sections match (%d fields)\n", len(old.Deterministic))

	deltas := obs.TimingDeltas(old, new)
	onlyOld, onlyNew := obs.TimingOnly(old, new)
	if len(deltas)+len(onlyOld)+len(onlyNew) > 0 {
		fmt.Printf("\n%-40s %14s %14s %9s\n", "timing", "old", "new", "delta")
		for _, d := range deltas {
			fmt.Printf("%-40s %14.6g %14.6g %+8.1f%%\n", d.Key, d.Old, d.New, pctChange(d.Old, d.New))
		}
		// One-sided keys (e.g. store composition counters a newer build
		// records and an older one predates) are shown, never gated.
		for _, k := range onlyOld {
			fmt.Printf("%-40s %14.6g %14s\n", k, old.Timing[k], "-")
		}
		for _, k := range onlyNew {
			fmt.Printf("%-40s %14s %14.6g\n", k, "-", new.Timing[k])
		}
	}
	geomean := obs.TimingGeomeanSpeedup(deltas)
	if geomean > 0 {
		fmt.Printf("\ngeomean wall-clock speedup: %.3fx\n", geomean)
	}

	if *threshold > 0 && geomean > 0 {
		floor := 1 - *threshold/100
		if geomean < floor {
			fmt.Printf("REGRESSION: geomean speedup %.3fx below threshold %.3fx\n", geomean, floor)
			os.Exit(1)
		}
		fmt.Printf("within threshold (floor %.3fx)\n", floor)
	}
}

// pctChange returns the relative change new vs old in percent, 0 when old
// is zero.
func pctChange(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

// renderField resolves a dotted path ("deterministic.scale.seed", "tool")
// into the value it names, for the mismatch report. Best-effort: paths it
// cannot walk (array indices, missing keys) render as "<absent>".
func renderField(m *obs.Manifest, path string) string {
	if path == "tool" {
		return m.Tool
	}
	var cur any = map[string]any{"deterministic": m.Deterministic}
	for rest := path; rest != ""; {
		key, tail, _ := strings.Cut(rest, ".")
		rest = tail
		mp, ok := cur.(map[string]any)
		if !ok {
			return "<absent>"
		}
		cur, ok = mp[key]
		if !ok {
			return "<absent>"
		}
	}
	return fmt.Sprintf("%v", cur)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "obsdiff:", err)
	os.Exit(1)
}
