// Multicore: the paper's future-work direction, running. Four cores with
// very different workloads share an L2 budget and memory bandwidth; each
// core adapts its private resources with the trained predictor and the
// partition policy moves L2 capacity toward miss pressure. The report
// shows the chip specialising — the "true heterogeneity" the paper's
// conclusion anticipates.
//
// Run with: go run ./examples/multicore   (takes a minute or two)
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/counters"
	"repro/internal/experiment"
	"repro/internal/multicore"
)

func main() {
	// Train the shared predictor on a spread of programs.
	sc := experiment.TestScale()
	sc.Programs = []string{
		"mcf", "swim", "crafty", "gzip", "eon", "applu",
		"art", "parser", "galgel", "sixtrack",
	}
	sc.PhasesPerProgram = 3
	sc.IntervalInsts = 5000
	sc.WarmupInsts = 5000
	sc.UniformSamples = 20
	sc.LocalSamples = 6
	log.Println("building training data...")
	ds, err := experiment.Build(context.Background(), sc)
	if err != nil {
		log.Fatal(err)
	}
	log.Println("training the predictor...")
	pred, err := ds.TrainAll(counters.Advanced)
	if err != nil {
		log.Fatal(err)
	}

	opts := multicore.DefaultOptions()
	opts.Interval = 6000
	opts.Start = ds.BestStatic.With(arch.L2CacheKB, 1024)
	specs := []multicore.CoreSpec{
		{Program: "equake"}, // chase + stream, memory hungry
		{Program: "lucas"},  // pure streaming FP
		{Program: "twolf"},  // branchy integer
		{Program: "mesa"},   // small-footprint FP
	}
	sys, err := multicore.New(specs, pred, opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Println("running the 4-core adaptive chip...")
	rep, err := sys.Run(8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-core outcomes:")
	for _, cr := range rep.Cores {
		fmt.Printf("  %-8s W=%d IQ=%-2d RF=%-3d D$=%-3dK L2quota~%4.0fK FO4=%-2d  ips=%.2e  eff=%.3e\n",
			cr.Spec.Program,
			cr.FinalConfig[arch.Width], cr.FinalConfig[arch.IQSize], cr.FinalConfig[arch.RFSize],
			cr.FinalConfig[arch.DCacheKB], cr.AvgL2QuotaKB, cr.FinalConfig[arch.DepthFO4],
			cr.IPS, cr.Efficiency)
	}
	fmt.Printf("\nchip: %.2e aggregate ips at %.1f W\n", rep.TotalIPS, rep.TotalWatts)
	fmt.Printf("heterogeneity: %.2f (0 = identical cores)\n", rep.Heterogeneity)
	fmt.Printf("memory contention stretch: %.2fx\n", rep.ContentionStretch)
}
