// Designspace: the motivation for the paper in one table. Two programs
// with opposite characters (a pointer-chasing memory-bound code and a
// high-ILP streaming FP code) are swept across pipeline widths and L2
// sizes: the configuration that maximises energy-efficiency for one is
// far from optimal for the other, so no static machine suits both — the
// paper's Figure 1/Section II argument.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/trace"
)

func main() {
	programs := []string{"mcf", "swim"}
	const n, warm = 12_000, 12_000

	fmt.Println("efficiency (ips^3/W) relative to each program's best, by width x L2 size")
	for _, prog := range programs {
		gen, err := trace.NewGenerator(prog, 0)
		if err != nil {
			log.Fatal(err)
		}
		insts := gen.Interval(n)

		type cell struct {
			w, l2 int
			eff   float64
		}
		var cells []cell
		best := 0.0
		for _, w := range arch.Domain(arch.Width) {
			for _, l2 := range arch.Domain(arch.L2CacheKB) {
				cfg := arch.Baseline().With(arch.Width, w).With(arch.L2CacheKB, l2)
				sim, err := cpu.New(cfg)
				if err != nil {
					log.Fatal(err)
				}
				res, err := sim.Run(cpu.NewSliceSource(insts), len(insts), cpu.Options{WarmupInsts: warm})
				if err != nil {
					log.Fatal(err)
				}
				cells = append(cells, cell{w, l2, res.Efficiency})
				if res.Efficiency > best {
					best = res.Efficiency
				}
			}
		}

		fmt.Printf("\n%s:\n      ", prog)
		for _, l2 := range arch.Domain(arch.L2CacheKB) {
			fmt.Printf("%7dK", l2)
		}
		fmt.Println()
		i := 0
		for _, w := range arch.Domain(arch.Width) {
			fmt.Printf("w=%d  ", w)
			for range arch.Domain(arch.L2CacheKB) {
				fmt.Printf("%8.2f", cells[i].eff/best)
				i++
			}
			fmt.Println()
		}
	}
	fmt.Println("\n1.00 marks each program's own optimum; note how far apart they sit.")
}
