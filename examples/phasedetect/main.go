// Phasedetect: the controller's stage-1 machinery in isolation. A program
// whose behaviour shifts between phases is streamed through the online
// working-set-signature detector; the example prints the per-interval
// basic-block-vector distance to the previous interval alongside the
// detector's decisions, then shows SimPoint-style clustering of the same
// intervals.
//
// Run with: go run ./examples/phasedetect
package main

import (
	"fmt"
	"log"

	"repro/internal/phase"
	"repro/internal/trace"
)

func main() {
	const program = "galgel" // highly phase-variable benchmark
	const perPhase = 2
	const ivInsts = 30_000

	det, err := phase.NewDetector(1024, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	var bbvs [][]float64
	fmt.Printf("%s, %d-instruction intervals, walking its %d phases:\n\n",
		program, ivInsts, trace.PhasesPerProgram)
	fmt.Println("interval  true-phase  bbv-distance  detector")
	var prev []float64
	i := 0
	for ph := 0; ph < trace.PhasesPerProgram; ph++ {
		gen, err := trace.NewGenerator(program, ph)
		if err != nil {
			log.Fatal(err)
		}
		for iv := 0; iv < perPhase; iv++ {
			insts := gen.Interval(ivInsts)
			v := phase.BBV(insts)
			bbvs = append(bbvs, v)
			dist := 0.0
			if prev != nil {
				dist = phase.ManhattanDistance(v, prev)
			}
			prev = v
			for k := range insts {
				det.Observe(insts[k])
			}
			fired := det.EndInterval()
			mark := ""
			if fired {
				mark = "CHANGE"
			}
			fmt.Printf("%8d %11d %13.3f  %s\n", i, ph, dist, mark)
			i++
		}
	}

	ex, err := phase.Extract(bbvs, 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSimPoint-style extraction found %d phases:\n", ex.Phases())
	for c := range ex.Representatives {
		fmt.Printf("  phase %d: weight %4.1f%%, representative interval %d\n",
			c, 100*ex.Weights[c], ex.Representatives[c])
	}
	fmt.Printf("\nonline detector fired on %d of %d intervals\n", det.Changes, det.Intervals)
}
