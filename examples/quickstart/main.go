// Quickstart: simulate one SPEC-2000-style benchmark phase on the paper's
// baseline configuration and print the performance, power and
// energy-efficiency numbers the rest of the project is built around.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/trace"
)

func main() {
	// A deterministic instruction stream: benchmark "gzip", phase 0.
	gen, err := trace.NewGenerator("gzip", 0)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's best-overall-static machine (Table III).
	cfg := arch.Baseline()
	sim, err := cpu.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 50k instructions after a 25k-instruction warmup.
	res, err := sim.Run(gen, 50_000, cpu.Options{WarmupInsts: 25_000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("configuration:", cfg)
	fmt.Printf("cycles:        %d\n", res.Cycles)
	fmt.Printf("IPC:           %.2f\n", res.IPC)
	fmt.Printf("frequency:     %.2f GHz\n", sim.Power().FrequencyHz/1e9)
	fmt.Printf("power:         %.1f W\n", res.Watts)
	fmt.Printf("energy:        %.2e J\n", res.EnergyJ)
	fmt.Printf("branch mpki:   %.1f\n", 1000*float64(res.Mispredicts)/float64(res.Committed))
	fmt.Printf("L1D miss rate: %.1f%%\n", 100*float64(res.L1DMisses)/float64(res.L1DAccesses))
	fmt.Printf("efficiency:    %.3e ips^3/Watt\n", res.Efficiency)

	// Now shrink the machine and watch the trade-off move.
	lean := cfg.
		With(arch.Width, 2).
		With(arch.L2CacheKB, 256).
		With(arch.GshareSize, 1024)
	leanSim, err := cpu.New(lean)
	if err != nil {
		log.Fatal(err)
	}
	gen2, _ := trace.NewGenerator("gzip", 0)
	leanRes, err := leanSim.Run(gen2, 50_000, cpu.Options{WarmupInsts: 25_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlean machine:  IPC %.2f, %.1f W, efficiency %.3e (%.2fx baseline)\n",
		leanRes.IPC, leanRes.Watts, leanRes.Efficiency, leanRes.Efficiency/res.Efficiency)
}
