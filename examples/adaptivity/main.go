// Adaptivity: the paper's full loop, live. A predictor is trained on a
// handful of benchmarks, then a *different* benchmark runs under the
// runtime controller: watch it detect phase changes, profile on the
// maximal configuration, predict, and reconfigure — and compare the
// resulting energy-efficiency against staying on the best static machine.
//
// Run with: go run ./examples/adaptivity   (takes a minute or two)
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/experiment"
	"repro/internal/trace"
)

func main() {
	// Train on sixteen diverse programs; evaluate on one (equake) the
	// model has never seen — honest held-out adaptation. Prediction
	// quality grows with training breadth, so the example spends most of
	// its runtime here.
	sc := experiment.TestScale()
	sc.Programs = []string{
		"mcf", "swim", "crafty", "gzip", "eon", "applu",
		"art", "parser", "galgel", "sixtrack", "mgrid", "vortex",
		"twolf", "lucas", "ammp", "bzip2",
	}
	sc.PhasesPerProgram = 4
	sc.IntervalInsts = 5000
	sc.WarmupInsts = 5000
	sc.UniformSamples = 24
	sc.LocalSamples = 8

	log.Println("building training data (a few thousand simulations)...")
	ds, err := experiment.Build(context.Background(), sc)
	if err != nil {
		log.Fatal(err)
	}
	log.Println("training the per-parameter soft-max models...")
	pred, err := ds.TrainAll(counters.Advanced)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	// Intervals must exceed the programs' loop-walk period for working-set
	// signatures to be phase-stable (cf. SimPoint's 10M-instruction
	// intervals).
	opts.Interval = 24000
	opts.SampledSets = 32
	opts.Start = ds.BestStatic
	opts.Threshold = 0.6
	// Reconfiguration costs are the paper's absolute cycle counts; our
	// intervals are ~1000x shorter than its 10M-instruction intervals, so
	// scale the overheads to keep the same overhead-to-interval ratio.
	opts.OverheadScale = 0.02
	ctl, err := core.NewController(pred, opts)
	if err != nil {
		log.Fatal(err)
	}

	const program = "equake"
	const intervals = 12
	src := newPhaseWalker(program, 4*opts.Interval)
	log.Printf("running %s under the adaptive controller...", program)
	rep, err := ctl.Run(src, intervals)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range rep.Records {
		what := "steady"
		if r.Profiled {
			what = "PROFILE+PREDICT"
		}
		fmt.Printf("interval %2d: %-16s eff=%.3e  W=%d IQ=%d RF=%d D$=%dK L2=%dK FO4=%d\n",
			r.Index, what, r.Efficiency,
			r.Config[arch.Width], r.Config[arch.IQSize], r.Config[arch.RFSize],
			r.Config[arch.DCacheKB], r.Config[arch.L2CacheKB], r.Config[arch.DepthFO4])
	}

	// The static alternative on the identical stream.
	sim, err := cpu.New(ds.BestStatic)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(newPhaseWalker(program, 3*opts.Interval), intervals*opts.Interval, cpu.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nadaptive:   %.3e ips^3/W  (%d reconfigurations, %d profiles)\n",
		rep.Efficiency, rep.Reconfigs, rep.Profiles)
	fmt.Printf("best static: %.3e ips^3/W\n", res.Efficiency)
	if res.Efficiency > 0 {
		fmt.Printf("ratio:       %.2fx\n", rep.Efficiency/res.Efficiency)
	}
}

// phaseWalker streams a program's phases in sequence so the controller
// sees genuine phase changes.
type phaseWalker struct {
	program  string
	gen      *trace.Generator
	perPhase int
	n, phase int
}

func newPhaseWalker(program string, perPhase int) *phaseWalker {
	g, err := trace.NewGenerator(program, 0)
	if err != nil {
		log.Fatal(err)
	}
	return &phaseWalker{program: program, gen: g, perPhase: perPhase}
}

// Next returns the next instruction, advancing phases periodically.
func (w *phaseWalker) Next() trace.Inst {
	if w.n >= w.perPhase && w.phase < trace.PhasesPerProgram-1 {
		w.phase++
		w.n = 0
		if g, err := trace.NewGenerator(w.program, w.phase); err == nil {
			w.gen = g
		}
	}
	w.n++
	return w.gen.Next()
}
