// Package repro is a from-scratch Go reproduction of Dubach, Jones,
// Bonilla and O'Boyle, "A Predictive Model for Dynamic Microarchitectural
// Adaptivity Control" (MICRO 2010): a cycle-level adaptive out-of-order
// processor simulator with Wattch/Cacti-style power models, SPEC-CPU-2000-
// style synthetic workloads, temporal-histogram hardware counters,
// SimPoint-style phase analysis, and the per-parameter soft-max predictor
// that drives runtime reconfiguration.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation.
package repro
