#!/usr/bin/env bash
# Tier-1 verification gate: build, vet, formatting, the full test suite,
# and the serving subsystem under the race detector (it is the only
# package with real request-level concurrency). CLAUDE.md points here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test =="
go test ./...

echo "== go test -race internal/serve =="
go test -race ./internal/serve

echo "== go test -race internal/obs =="
go test -race ./internal/obs

echo "== report -trace smoke =="
trace_out=$(mktemp /tmp/verify-trace.XXXXXX.json)
trap 'rm -f "$trace_out"' EXIT
go run ./cmd/report -scale test -skip-slow -trace "$trace_out" >/dev/null
go run ./scripts/checktrace "$trace_out"

echo "verify: all gates passed"
