#!/usr/bin/env bash
# Tier-1 verification gate: build, vet, formatting, the full test suite,
# and the serving subsystem under the race detector (it is the only
# package with real request-level concurrency). CLAUDE.md points here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test =="
go test ./...

echo "== go test -race internal/serve =="
go test -race ./internal/serve

echo "== go test -race internal/obs =="
go test -race ./internal/obs

echo "== go test -race internal/store =="
go test -race ./internal/store

echo "== report -trace smoke =="
trace_out=$(mktemp /tmp/verify-trace.XXXXXX.json)
cache_dir=$(mktemp -d /tmp/verify-store.XXXXXX)
cold_out=$(mktemp /tmp/verify-cold.XXXXXX)
warm_out=$(mktemp /tmp/verify-warm.XXXXXX)
warm_err=$(mktemp /tmp/verify-warmerr.XXXXXX)
trap 'rm -rf "$trace_out" "$cache_dir" "$cold_out" "$warm_out" "$warm_err"' EXIT
go run ./cmd/report -scale test -skip-slow -trace "$trace_out" >/dev/null
go run ./scripts/checktrace "$trace_out"

echo "== report result-store cold/warm smoke =="
go run ./cmd/report -scale test -skip-slow -cache-dir "$cache_dir" >"$cold_out" 2>/dev/null
go run ./cmd/report -scale test -skip-slow -cache-dir "$cache_dir" >"$warm_out" 2>"$warm_err"
if ! cmp -s "$cold_out" "$warm_out"; then
    echo "store smoke: cold and warm runs differ on stdout" >&2
    diff "$cold_out" "$warm_out" | head -20 >&2
    exit 1
fi
warm_rate=$(grep -o 'storeHitRate=[0-9.]*' "$warm_err" | tail -1 | cut -d= -f2)
if [ -z "$warm_rate" ]; then
    echo "store smoke: warm run printed no storeHitRate" >&2
    exit 1
fi
if ! awk -v r="$warm_rate" 'BEGIN { exit !(r >= 0.90) }'; then
    echo "store smoke: warm store hit rate $warm_rate < 0.90" >&2
    exit 1
fi
echo "store smoke: warm run byte-identical, hit rate $warm_rate"

echo "verify: all gates passed"
