#!/usr/bin/env bash
# Tier-1 verification gate: build, vet, formatting, the full test suite,
# and the serving subsystem under the race detector (it is the only
# package with real request-level concurrency). CLAUDE.md points here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test =="
go test ./...

echo "== golden digests (simulator byte-identity) =="
# Fast tripwire for the hot-path optimisations: any change to simulation
# results must either keep these digests bit-identical or bump
# store.SimVersion (see CLAUDE.md). -count=1 defeats the test cache.
go test -count=1 -run TestGoldenDigests ./internal/cpu

echo "== go test -race internal/experiment =="
# Exercises the WithWorkers build fan-out (workers_test.go) under the
# race detector.
go test -race ./internal/experiment

echo "== go test -race internal/serve =="
go test -race ./internal/serve

echo "== go test -race internal/obs =="
go test -race ./internal/obs

echo "== go test -race internal/store =="
go test -race ./internal/store

echo "== go test -race internal/surrogate =="
go test -race ./internal/surrogate

echo "== report -trace smoke =="
trace_out=$(mktemp /tmp/verify-trace.XXXXXX.json)
cache_dir=$(mktemp -d /tmp/verify-store.XXXXXX)
cold_out=$(mktemp /tmp/verify-cold.XXXXXX)
warm_out=$(mktemp /tmp/verify-warm.XXXXXX)
warm_err=$(mktemp /tmp/verify-warmerr.XXXXXX)
sur_off_out=$(mktemp /tmp/verify-suroff.XXXXXX)
sur_off_err=$(mktemp /tmp/verify-surofferr.XXXXXX)
sur_on_out=$(mktemp /tmp/verify-suron.XXXXXX)
sur_on_err=$(mktemp /tmp/verify-suronerr.XXXXXX)
cold_man=$(mktemp /tmp/verify-coldman.XXXXXX.json)
warm_man=$(mktemp /tmp/verify-warmman.XXXXXX.json)
fab_dir=$(mktemp -d /tmp/verify-fabric.XXXXXX)
fab_out=$(mktemp /tmp/verify-fabout.XXXXXX)
fab_err=$(mktemp /tmp/verify-faberr.XXXXXX)
merged_dir=$(mktemp -d /tmp/verify-merged.XXXXXX)
replay_out=$(mktemp /tmp/verify-replay.XXXXXX)
replay_err=$(mktemp /tmp/verify-replayerr.XXXXXX)
replay_man=$(mktemp /tmp/verify-replayman.XXXXXX.json)
bad_dir=$(mktemp -d /tmp/verify-badstore.XXXXXX)
trap 'rm -rf "$trace_out" "$cache_dir" "$cold_out" "$warm_out" "$warm_err" "$sur_off_out" "$sur_off_err" "$sur_on_out" "$sur_on_err" "$cold_man" "$warm_man" "$fab_dir" "$fab_out" "$fab_err" "$merged_dir" "$replay_out" "$replay_err" "$replay_man" "$bad_dir"' EXIT
go run ./cmd/report -scale test -skip-slow -trace "$trace_out" >"$sur_off_out" 2>"$sur_off_err"
go run ./scripts/checktrace "$trace_out"

echo "== report result-store cold/warm smoke =="
go run ./cmd/report -scale test -skip-slow -cache-dir "$cache_dir" -manifest "$cold_man" >"$cold_out" 2>/dev/null
go run ./cmd/report -scale test -skip-slow -cache-dir "$cache_dir" -manifest "$warm_man" >"$warm_out" 2>"$warm_err"
if ! cmp -s "$cold_out" "$warm_out"; then
    echo "store smoke: cold and warm runs differ on stdout" >&2
    diff "$cold_out" "$warm_out" | head -20 >&2
    exit 1
fi
warm_rate=$(grep -o 'storeHitRate=[0-9.]*' "$warm_err" | tail -1 | cut -d= -f2)
if [ -z "$warm_rate" ]; then
    echo "store smoke: warm run printed no storeHitRate" >&2
    exit 1
fi
if ! awk -v r="$warm_rate" 'BEGIN { exit !(r >= 0.90) }'; then
    echo "store smoke: warm store hit rate $warm_rate < 0.90" >&2
    exit 1
fi
echo "store smoke: warm run byte-identical, hit rate $warm_rate"

echo "== run-manifest smoke =="
# The cold and warm runs above each wrote a manifest. Their deterministic
# sections (scale, seeds, dataset digest, span-tree digest, span counts)
# must match exactly — obsdiff exits 1 naming the first differing field —
# and the warm manifest's timing section must record the >=90% store hit
# rate. obsdiff itself is a thin main over internal/obs, which the -race
# gate above already covers.
go run ./cmd/obsdiff "$cold_man" "$warm_man"
man_rate=$(grep -o '"storeHitRate": [0-9.]*' "$warm_man" | grep -o '[0-9.]*$')
if [ -z "$man_rate" ]; then
    echo "manifest smoke: warm manifest has no storeHitRate" >&2
    exit 1
fi
if ! awk -v r="$man_rate" 'BEGIN { exit !(r >= 0.90) }'; then
    echo "manifest smoke: warm manifest storeHitRate $man_rate < 0.90" >&2
    exit 1
fi
echo "manifest smoke: deterministic sections match, warm storeHitRate $man_rate"

echo "== surrogate search smoke =="
# The surrogate is an opt-in accelerator: with the flag off the report must
# stay byte-identical to the baseline run, and with it on the search must
# spend at most half the exact simulations (README "Surrogate search").
if ! cmp -s "$sur_off_out" "$cold_out"; then
    echo "surrogate smoke: surrogate-off run differs from the baseline report" >&2
    diff "$sur_off_out" "$cold_out" | head -20 >&2
    exit 1
fi
go run ./cmd/report -scale test -skip-slow -surrogate >"$sur_on_out" 2>"$sur_on_err"
off_sims=$(grep -o 'searchSims=[0-9]*' "$sur_off_err" | tail -1 | cut -d= -f2)
on_sims=$(grep -o 'searchSims=[0-9]*' "$sur_on_err" | tail -1 | cut -d= -f2)
if [ -z "$off_sims" ] || [ -z "$on_sims" ] || [ "$on_sims" -eq 0 ]; then
    echo "surrogate smoke: missing searchSims in report logs (off='$off_sims' on='$on_sims')" >&2
    exit 1
fi
if [ $((2 * on_sims)) -gt "$off_sims" ]; then
    echo "surrogate smoke: search sims only dropped ${off_sims} -> ${on_sims} (< 2x)" >&2
    exit 1
fi
if ! grep -q 'surrogate summary' "$sur_on_err"; then
    echo "surrogate smoke: no surrogate summary line in the -surrogate run" >&2
    exit 1
fi
echo "surrogate smoke: search sims $off_sims -> $on_sims"

echo "== warmup checkpoint smoke =="
# Warmup checkpoints are an amortisation, never an approximation (README
# "Warmup checkpoints"): -warm-ckpt runs must stay byte-identical to the
# baseline report cold and warm, the second (warm) pass must restore
# warmups from the snapshot sidecar instead of re-executing them (>=2x
# fewer executed warmup instructions than the checkpoint-off baseline),
# checkpoint-off runs must leave no sidecar behind, and a flipped
# snapshot byte must fail storectl verify exactly like a flipped result
# byte.
ckpt_dir=$(mktemp -d /tmp/verify-ckpt.XXXXXX)
ckpt1_out=$(mktemp /tmp/verify-ckpt1.XXXXXX)
ckpt2_out=$(mktemp /tmp/verify-ckpt2.XXXXXX)
ckpt2_err=$(mktemp /tmp/verify-ckpt2err.XXXXXX)
bad_snap_dir=$(mktemp -d /tmp/verify-badsnap.XXXXXX)
trap 'rm -rf "$trace_out" "$cache_dir" "$cold_out" "$warm_out" "$warm_err" "$sur_off_out" "$sur_off_err" "$sur_on_out" "$sur_on_err" "$cold_man" "$warm_man" "$fab_dir" "$fab_out" "$fab_err" "$merged_dir" "$replay_out" "$replay_err" "$replay_man" "$bad_dir" "$ckpt_dir" "$ckpt1_out" "$ckpt2_out" "$ckpt2_err" "$bad_snap_dir"' EXIT
if [ -e "$cache_dir/snapshots.log" ]; then
    echo "ckpt smoke: checkpoint-off runs wrote a snapshot sidecar" >&2
    exit 1
fi
go run ./cmd/report -scale test -skip-slow -warm-ckpt -cache-dir "$ckpt_dir" >"$ckpt1_out" 2>/dev/null
if ! cmp -s "$ckpt1_out" "$cold_out"; then
    echo "ckpt smoke: cold -warm-ckpt stdout differs from the baseline report" >&2
    diff "$ckpt1_out" "$cold_out" | head -20 >&2
    exit 1
fi
if [ ! -s "$ckpt_dir/snapshots.log" ]; then
    echo "ckpt smoke: cold -warm-ckpt run wrote no snapshot sidecar" >&2
    exit 1
fi
go run ./cmd/report -scale test -skip-slow -warm-ckpt -cache-dir "$ckpt_dir" >"$ckpt2_out" 2>"$ckpt2_err"
if ! cmp -s "$ckpt2_out" "$cold_out"; then
    echo "ckpt smoke: warm -warm-ckpt stdout differs from the baseline report" >&2
    diff "$ckpt2_out" "$cold_out" | head -20 >&2
    exit 1
fi
ckpt_restores=$(grep -o 'warmupRestores=[0-9]*' "$ckpt2_err" | tail -1 | cut -d= -f2)
if [ -z "$ckpt_restores" ] || [ "$ckpt_restores" -eq 0 ]; then
    echo "ckpt smoke: warm pass restored no warmups (warmupRestores='$ckpt_restores')" >&2
    exit 1
fi
base_warm=$(grep -o 'warmupInsts=[0-9]*' "$sur_off_err" | tail -1 | cut -d= -f2)
ckpt_warm=$(grep -o 'warmupInsts=[0-9]*' "$ckpt2_err" | tail -1 | cut -d= -f2)
if [ -z "$base_warm" ] || [ -z "$ckpt_warm" ] || [ "$base_warm" -eq 0 ]; then
    echo "ckpt smoke: missing warmupInsts in report logs (base='$base_warm' ckpt='$ckpt_warm')" >&2
    exit 1
fi
if [ $((2 * ckpt_warm)) -gt "$base_warm" ]; then
    echo "ckpt smoke: executed warmup insts only dropped ${base_warm} -> ${ckpt_warm} (< 2x)" >&2
    exit 1
fi
# storectl must account for the sidecar and catch snapshot corruption.
if ! go run ./cmd/storectl stats "$ckpt_dir" | grep -q 'snapshots=[1-9]'; then
    echo "ckpt smoke: storectl stats reports no snapshot records" >&2
    exit 1
fi
go run ./cmd/storectl verify "$ckpt_dir"
cp "$ckpt_dir/results.log" "$ckpt_dir/simversion" "$ckpt_dir/snapshots.log" "$bad_snap_dir/"
snap_byte=$(od -An -tu1 -j58 -N1 "$bad_snap_dir/snapshots.log" | tr -d ' ')
printf "$(printf '\\%03o' $((snap_byte ^ 255)))" \
    | dd of="$bad_snap_dir/snapshots.log" bs=1 seek=58 count=1 conv=notrunc 2>/dev/null
if go run ./cmd/storectl verify "$bad_snap_dir" >/dev/null 2>&1; then
    echo "ckpt smoke: storectl verify missed a flipped snapshot byte" >&2
    exit 1
fi
echo "ckpt smoke: cold/warm byte-identical, $ckpt_restores restores, warmup insts $base_warm -> $ckpt_warm, snapshot corruption caught"

echo "== fabric sharded-build smoke =="
# A 2-shard fabric build (shard, merge, warm final build) must reproduce
# the plain sequential run exactly: byte-identical stdout, and the fleet
# paying in total exactly the sequential build's search simulations (the
# last searchSims= line is the process total: shard sims + a warm final
# build paying zero). See README "Distributed builds".
go run ./cmd/report -scale test -skip-slow -fabric 2 -cache-dir "$fab_dir" >"$fab_out" 2>"$fab_err"
if ! cmp -s "$fab_out" "$cold_out"; then
    echo "fabric smoke: -fabric 2 stdout differs from the sequential run" >&2
    diff "$fab_out" "$cold_out" | head -20 >&2
    exit 1
fi
fab_sims=$(grep -o ' searchSims=[0-9]*' "$fab_err" | tail -1 | cut -d= -f2)
if [ -z "$fab_sims" ] || [ "$fab_sims" -ne "$off_sims" ]; then
    echo "fabric smoke: fabric run paid $fab_sims search sims, sequential paid $off_sims" >&2
    exit 1
fi
# Merge the driver's registry and every shard's private store into one
# canonical directory: every overlap must dedupe, nothing may diverge.
go run ./cmd/storectl merge "$merged_dir" "$fab_dir" "$fab_dir"/fabric/shard-*
go run ./cmd/storectl verify "$merged_dir"
go run ./cmd/storectl stats "$merged_dir"
# The plain pipeline replayed from the merged registry must be
# byte-identical to the cold sequential run — stdout, manifest
# deterministic section, zero fresh search sims, >=90% store hit rate.
go run ./cmd/report -scale test -skip-slow -cache-dir "$merged_dir" -manifest "$replay_man" >"$replay_out" 2>"$replay_err"
if ! cmp -s "$replay_out" "$cold_out"; then
    echo "fabric smoke: replay from the merged store differs from the sequential run" >&2
    diff "$replay_out" "$cold_out" | head -20 >&2
    exit 1
fi
go run ./cmd/obsdiff "$cold_man" "$replay_man"
replay_sims=$(grep -o ' searchSims=[0-9]*' "$replay_err" | tail -1 | cut -d= -f2)
if [ -z "$replay_sims" ] || [ "$replay_sims" -ne 0 ]; then
    echo "fabric smoke: replay from the merged store paid $replay_sims fresh search sims, want 0" >&2
    exit 1
fi
replay_rate=$(grep -o '"storeHitRate": [0-9.]*' "$replay_man" | grep -o '[0-9.]*$')
if [ -z "$replay_rate" ] || ! awk -v r="$replay_rate" 'BEGIN { exit !(r >= 0.90) }'; then
    echo "fabric smoke: merged-store replay hit rate '$replay_rate' < 0.90" >&2
    exit 1
fi
# Other shard counts must reproduce the same run too. Seed each from the
# merged registry (storectl merge into a fresh dir), so the gate also
# proves store hits are indistinguishable from fresh simulations through
# the whole fabric path: every shard replays warm, zero sims are paid,
# and stdout still matches.
for n in 1 4; do
    n_dir=$(mktemp -d /tmp/verify-fab$n.XXXXXX)
    n_out=$(mktemp /tmp/verify-fab${n}out.XXXXXX)
    n_err=$(mktemp /tmp/verify-fab${n}err.XXXXXX)
    go run ./cmd/storectl merge "$n_dir" "$merged_dir" >/dev/null
    go run ./cmd/report -scale test -skip-slow -fabric $n -cache-dir "$n_dir" >"$n_out" 2>"$n_err"
    if ! cmp -s "$n_out" "$cold_out"; then
        echo "fabric smoke: -fabric $n stdout differs from the sequential run" >&2
        diff "$n_out" "$cold_out" | head -20 >&2
        rm -rf "$n_dir" "$n_out" "$n_err"
        exit 1
    fi
    n_sims=$(grep -o ' searchSims=[0-9]*' "$n_err" | tail -1 | cut -d= -f2)
    rm -rf "$n_dir" "$n_out" "$n_err"
    if [ -z "$n_sims" ] || [ "$n_sims" -ne 0 ]; then
        echo "fabric smoke: warm -fabric $n run paid $n_sims search sims, want 0" >&2
        exit 1
    fi
done
# storectl verify must catch a flipped byte (CRC) with a non-zero exit.
cp "$merged_dir/results.log" "$merged_dir/simversion" "$bad_dir/"
orig_byte=$(od -An -tu1 -j24 -N1 "$bad_dir/results.log" | tr -d ' ')
printf "$(printf '\\%03o' $((orig_byte ^ 255)))" \
    | dd of="$bad_dir/results.log" bs=1 seek=24 count=1 conv=notrunc 2>/dev/null
if go run ./cmd/storectl verify "$bad_dir" >/dev/null 2>&1; then
    echo "fabric smoke: storectl verify missed a flipped byte" >&2
    exit 1
fi
# ... and a SimVersion mismatch, which merge must also refuse.
cp "$merged_dir/results.log" "$bad_dir/"
echo 999 >"$bad_dir/simversion"
if go run ./cmd/storectl verify "$bad_dir" >/dev/null 2>&1; then
    echo "fabric smoke: storectl verify missed a simversion mismatch" >&2
    exit 1
fi
if go run ./cmd/storectl merge "$merged_dir" "$bad_dir" >/dev/null 2>&1; then
    echo "fabric smoke: storectl merge accepted a simversion mismatch" >&2
    exit 1
fi
echo "fabric smoke: shards 1/2/4 byte-identical, merge verified, corruption and version skew caught"

echo "== adaptd batch loadgen smoke =="
# Boot the daemon against the warm result store (training replays from
# disk), fire the deterministic load generator in batch mode, and require a
# clean report plus a populated batch-size histogram in the metrics dump.
model_dir=$(mktemp -d /tmp/verify-adaptd.XXXXXX)
loadgen_out=$(mktemp /tmp/verify-loadgen.XXXXXX)
trap 'rm -rf "$trace_out" "$cache_dir" "$cold_out" "$warm_out" "$warm_err" "$sur_off_out" "$sur_off_err" "$sur_on_out" "$sur_on_err" "$cold_man" "$warm_man" "$fab_dir" "$fab_out" "$fab_err" "$merged_dir" "$replay_out" "$replay_err" "$replay_man" "$bad_dir" "$ckpt_dir" "$ckpt1_out" "$ckpt2_out" "$ckpt2_err" "$bad_snap_dir" "$model_dir" "$loadgen_out"' EXIT
go run ./cmd/adaptd -model "$model_dir/adaptd.model" -counter-set basic \
    -train-scale test -cache-dir "$cache_dir" \
    -loadgen -loadgen-requests 512 -batch 64 >"$loadgen_out" 2>/dev/null
if ! grep -q 'requests=512 ok=512 rejected=0 clientErr=0 serverErr=0 transportErr=0' "$loadgen_out"; then
    echo "batch loadgen smoke: report shows errors or losses" >&2
    grep 'requests=' "$loadgen_out" >&2 || cat "$loadgen_out" >&2
    exit 1
fi
batch_count=$(grep -o '^adaptd_batch_size_count [0-9]*' "$loadgen_out" | awk '{print $2}')
if [ -z "$batch_count" ] || [ "$batch_count" -eq 0 ]; then
    echo "batch loadgen smoke: adaptd_batch_size_count missing or zero" >&2
    grep 'adaptd_batch' "$loadgen_out" >&2 || true
    exit 1
fi
# The final report now includes the /v1/status windowed latency SLOs;
# /v1/predict just served the whole schedule, so its p50 and p99 must be
# present and non-zero.
slo_line=$(grep 'slo /v1/predict' "$loadgen_out" || true)
if [ -z "$slo_line" ]; then
    echo "batch loadgen smoke: no /v1/predict SLO line in the report" >&2
    exit 1
fi
if ! echo "$slo_line" | awk '{
    for (i = 1; i <= NF; i++) {
        if ($i ~ /^p50=/) { p50 = substr($i, 5); sub(/s$/, "", p50) }
        if ($i ~ /^p99=/) { p99 = substr($i, 5); sub(/s$/, "", p99) }
    }
    exit !(p50 + 0 > 0 && p99 + 0 > 0)
}'; then
    echo "batch loadgen smoke: /v1/predict p50/p99 missing or zero: $slo_line" >&2
    exit 1
fi
echo "batch loadgen smoke: 512/512 ok, $batch_count batched kernel calls, ${slo_line# }"

echo "== adaptd open-loop admission/shadow smoke =="
# Reboot the daemon on the model the batch smoke just trained, shadowed by
# the same file, with admission control rate-limiting the background class
# only, and offer open-loop Poisson load with a Zipf-skewed pool. The
# background class must shed (its 10% share of -rps 600 far exceeds the
# 20/s bucket) while interactive and batch shed nothing, every class must
# report windowed latency quantiles, and the self-shadow must agree with
# the active model exactly.
open_out=$(mktemp /tmp/verify-openloop.XXXXXX)
trap 'rm -rf "$trace_out" "$cache_dir" "$cold_out" "$warm_out" "$warm_err" "$sur_off_out" "$sur_off_err" "$sur_on_out" "$sur_on_err" "$cold_man" "$warm_man" "$fab_dir" "$fab_out" "$fab_err" "$merged_dir" "$replay_out" "$replay_err" "$replay_man" "$bad_dir" "$ckpt_dir" "$ckpt1_out" "$ckpt2_out" "$ckpt2_err" "$bad_snap_dir" "$model_dir" "$loadgen_out" "$open_out"' EXIT
go run ./cmd/adaptd -model "$model_dir/adaptd.model" -counter-set basic \
    -shadow "$model_dir/adaptd.model" \
    -admission -admission-rate background=20:5 \
    -loadgen -loadgen-mode open -rps 600 -loadgen-requests 900 \
    -loadgen-zipf 1.1 >"$open_out" 2>/dev/null
if ! grep -q 'requests=900 ok=[0-9]* rejected=[0-9]* clientErr=0 serverErr=0 transportErr=0' "$open_out"; then
    echo "open-loop smoke: report shows request errors" >&2
    grep 'requests=' "$open_out" >&2 || cat "$open_out" >&2
    exit 1
fi
bg_shed=$(grep '^class background' "$open_out" | grep -o 'shed=[0-9]*' | head -1 | cut -d= -f2)
if [ -z "$bg_shed" ] || [ "$bg_shed" -eq 0 ]; then
    echo "open-loop smoke: background class did not shed under a 20/s bucket" >&2
    grep '^class ' "$open_out" >&2 || true
    exit 1
fi
for cls in interactive batch; do
    shed=$(grep "^class $cls" "$open_out" | grep -o 'shed=[0-9]*' | head -1 | cut -d= -f2)
    if [ -z "$shed" ] || [ "$shed" -ne 0 ]; then
        echo "open-loop smoke: $cls class shed (shed=$shed); only background may shed here" >&2
        grep '^class ' "$open_out" >&2 || true
        exit 1
    fi
done
for cls in interactive batch background; do
    if ! grep "class $cls" "$open_out" | awk '
        /p50=/ {
            for (i = 1; i <= NF; i++) {
                if ($i ~ /^p50=/) { p50 = substr($i, 5); sub(/s$/, "", p50) }
                if ($i ~ /^p99=/) { p99 = substr($i, 5); sub(/s$/, "", p99) }
            }
            if (p50 + 0 > 0 && p99 + 0 > 0) found = 1
        }
        END { exit !found }'; then
        echo "open-loop smoke: $cls class p50/p99 missing or zero" >&2
        grep "class $cls" "$open_out" >&2 || true
        exit 1
    fi
done
if ! grep -q 'paramAgreement=1\.000 decisionMatch=1\.000' "$open_out"; then
    echo "open-loop smoke: self-shadow disagreed with the active model" >&2
    grep 'shadow' "$open_out" >&2 || true
    exit 1
fi
echo "open-loop smoke: background shed $bg_shed, interactive/batch shed 0, self-shadow agreement 1.000"

echo "verify: all gates passed"
