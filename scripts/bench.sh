#!/usr/bin/env bash
# Simulator hot-path benchmark harness: runs the sim-core, cache-model
# and dataset-build benchmarks, prints a before/after table against the
# recorded baseline (scripts/bench_baseline.txt) and writes the
# machine-readable comparison to BENCH_sim.json. See README "Performance".
#
#   scripts/bench.sh                  # ~1 min
#   BENCHTIME=2s scripts/bench.sh     # longer, steadier runs
#   OUT=/tmp/b.json scripts/bench.sh  # alternate JSON path
#
# The recorded baseline is machine-specific (see the header of
# bench_baseline.txt); on other hardware read the ratios, not the
# absolute numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
out="${OUT:-BENCH_sim.json}"
raw=$(mktemp /tmp/bench-raw.XXXXXX.txt)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench, sim core (benchtime $benchtime) =="
go test -run XXX -bench 'BenchmarkSimRun|BenchmarkSimRunCollect' \
    -benchmem -benchtime "$benchtime" ./internal/cpu | tee "$raw"

echo "== go test -bench, cache model (benchtime $benchtime) =="
go test -run XXX -bench 'BenchmarkCacheAccess|BenchmarkHierarchyAccess|BenchmarkProfilerObserve' \
    -benchmem -benchtime "$benchtime" ./internal/cache | tee -a "$raw"

echo "== go test -bench, dataset build cold vs warmup-checkpointed (6 builds each) =="
# End-to-end test-scale dataset builds against a store: cold re-executes
# every warmup, warm-ckpt restores them from the snapshot sidecar (README
# "Warmup checkpoints"). The recorded baseline carries the pre-checkpoint
# build cost under both names, so the warm-ckpt row's speedup is the
# amortisation win.
go test -run XXX -bench 'BenchmarkDatasetBuild' \
    -benchtime 6x ./internal/experiment | tee -a "$raw"

echo
echo "== cmd/report -scale test -skip-slow wall clock (best of 3) =="
# End-to-end pipeline wall clock, recorded alongside the microbenchmarks.
# The baseline constant below is the best-of-3 interleaved measurement of
# the pre-overhaul binary (commit c86856f) on the same otherwise-idle
# machine as bench_baseline.txt.
report_baseline_s=2.68
go build -o /tmp/bench-report ./cmd/report
report_s=""
for _ in 1 2 3; do
    t0=$(date +%s.%N)
    /tmp/bench-report -scale test -skip-slow >/dev/null
    t1=$(date +%s.%N)
    dt=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.2f", b-a}')
    echo "  run: ${dt}s"
    if [ -z "$report_s" ] || awk -v n="$dt" -v c="$report_s" 'BEGIN{exit !(n < c)}'; then
        report_s="$dt"
    fi
done
rm -f /tmp/bench-report
echo "  best: ${report_s}s (pre-overhaul baseline: ${report_baseline_s}s)"

echo
echo "== vs recorded pre-overhaul baseline =="
go run ./scripts/benchdiff scripts/bench_baseline.txt "$raw"
go run ./scripts/benchdiff -json \
    -extra "report_test_scale_s=$report_s" \
    -extra "report_test_scale_baseline_s=$report_baseline_s" \
    scripts/bench_baseline.txt "$raw" >"$out"
echo
echo "wrote $out"
