package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOneSidedBenchmarks: a benchmark present on only one side must
// surface as a one-sided row — in the document and the table — instead
// of being dropped silently, and must not perturb the geomean.
func TestOneSidedBenchmarks(t *testing.T) {
	oldPath := writeBench(t, `
BenchmarkShared-4      100  200.0 ns/op  64 B/op
BenchmarkRemoved-4     100  999.0 ns/op
`)
	newPath := writeBench(t, `
BenchmarkShared-4      100  100.0 ns/op
BenchmarkAdded-4       100  50.0 ns/op
`)
	oldB, _, err := parseFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newB, order, err := parseFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	doc := buildDoc(oldB, newB, order)

	names := map[string]jsonBench{}
	for _, jb := range doc.Benchmarks {
		names[jb.Name] = jb
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3 (shared, added, removed)", len(doc.Benchmarks))
	}
	if jb, ok := names["BenchmarkAdded"]; !ok || jb.Old != nil || jb.Speedup != 0 {
		t.Errorf("new-only benchmark mishandled: %+v", jb)
	}
	if jb, ok := names["BenchmarkRemoved"]; !ok || jb.New != nil || jb.Speedup != 0 {
		t.Errorf("old-only benchmark mishandled: %+v", jb)
	}
	if got := names["BenchmarkShared"].Speedup; got != 2.0 {
		t.Errorf("shared speedup = %v, want 2.0", got)
	}
	// Geomean covers only the shared benchmark.
	if math.Abs(doc.GeomeanSpeedup-2.0) > 1e-9 {
		t.Errorf("geomean = %v, want 2.0", doc.GeomeanSpeedup)
	}

	rows := diffRows(doc)
	var added, removed, sharedBop string
	for _, r := range rows {
		key := r[0] + "/" + r[1]
		switch key {
		case "BenchmarkAdded/ns/op":
			added = strings.Join(r, " ")
		case "BenchmarkRemoved/ns/op":
			removed = strings.Join(r, " ")
		case "BenchmarkShared/B/op":
			sharedBop = strings.Join(r, " ")
		}
	}
	if !strings.Contains(added, "new only") || !strings.Contains(added, "-") {
		t.Errorf("new-only row not rendered one-sided: %q", added)
	}
	if !strings.Contains(removed, "old only") || !strings.Contains(removed, "999") {
		t.Errorf("old-only row not rendered one-sided: %q", removed)
	}
	// A metric present on one side of a shared benchmark is one-sided too.
	if !strings.Contains(sharedBop, "old only") {
		t.Errorf("one-sided metric of a shared benchmark dropped: %q", sharedBop)
	}
}
