// Command benchdiff is a benchstat-style before/after comparator for
// `go test -bench` output, stdlib only. scripts/bench.sh uses it to emit
// BENCH_sim.json; it is also useful on its own when iterating on the
// simulator hot path:
//
//	go test -bench SimRun -benchmem ./internal/cpu > new.txt
//	go run ./scripts/benchdiff old.txt new.txt
//
// Usage:
//
//	benchdiff [-json] old.txt new.txt   before/after comparison
//	benchdiff [-json] new.txt           just parse and report one file
//
// Lines that do not start with "Benchmark" are ignored, so raw `go test`
// output works directly. The CPU-count suffix ("-8") is stripped from
// names, letting files recorded on different GOMAXPROCS compare. With
// -json the comparison is emitted as a machine-readable document: per
// benchmark every metric of both sides, the speedup on the headline
// metric (ns/inst when present, ns/op otherwise), and the geometric mean
// of the speedups. Benchmarks or metrics present on only one side render
// as one-sided rows ("old only" / "new only") instead of being dropped;
// speedups and the geomean cover only the benchmarks present on both
// sides. With -threshold PCT the command exits 1 when the
// geomean speedup falls below 1-PCT/100 — a drop-in CI regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// bench is one parsed benchmark line: a name plus metric values by unit.
type bench struct {
	name    string
	iters   int64
	metrics map[string]float64
}

// parseFile reads `go test -bench` output, keeping the last occurrence of
// each benchmark name (reruns supersede earlier lines).
func parseFile(path string) (map[string]bench, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := map[string]bench{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimCPUSuffix(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := bench{name: name, iters: iters, metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.metrics[fields[i+1]] = v
		}
		if _, seen := out[name]; !seen {
			order = append(order, name)
		}
		out[name] = b
	}
	return out, order, sc.Err()
}

// trimCPUSuffix drops a trailing "-<digits>" GOMAXPROCS marker.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// headline picks the metric a benchmark is judged by.
func headline(b bench) string {
	if _, ok := b.metrics["ns/inst"]; ok {
		return "ns/inst"
	}
	return "ns/op"
}

type jsonBench struct {
	Name     string             `json:"name"`
	Old      map[string]float64 `json:"old,omitempty"`
	New      map[string]float64 `json:"new"`
	Headline string             `json:"headline_metric"`
	Speedup  float64            `json:"speedup,omitempty"` // old/new on the headline metric
}

type jsonDoc struct {
	OldFile    string      `json:"old_file,omitempty"`
	NewFile    string      `json:"new_file"`
	Benchmarks []jsonBench `json:"benchmarks"`
	// GeomeanSpeedup covers the benchmarks present on both sides.
	GeomeanSpeedup float64 `json:"geomean_speedup,omitempty"`
	// Extra carries caller-supplied scalars (-extra key=value), e.g. the
	// end-to-end report wall clock bench.sh measures outside `go test`.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// extraFlags collects repeated -extra key=value pairs.
type extraFlags map[string]float64

func (e extraFlags) String() string { return "" }

func (e extraFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", s)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	e[k] = f
	return nil
}

func main() {
	asJSON := flag.Bool("json", false, "emit the comparison as JSON instead of a table")
	threshold := flag.Float64("threshold", 0,
		"exit 1 if the geomean speedup regresses by more than this percent (0 disables; needs old.txt)")
	extra := extraFlags{}
	flag.Var(extra, "extra", "extra key=value scalar to embed in the JSON document (repeatable)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-json] [-threshold PCT] [-extra k=v]... [old.txt] new.txt")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 || len(args) > 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPath := ""
	newPath := args[len(args)-1]
	if len(args) == 2 {
		oldPath = args[0]
	}

	oldB := map[string]bench{}
	if oldPath != "" {
		var err error
		oldB, _, err = parseFile(oldPath)
		if err != nil {
			fatal(err)
		}
	}
	newB, order, err := parseFile(newPath)
	if err != nil {
		fatal(err)
	}
	if len(newB) == 0 {
		fatal(fmt.Errorf("%s contains no benchmark lines", newPath))
	}

	doc := buildDoc(oldB, newB, order)
	doc.OldFile, doc.NewFile = oldPath, newPath
	if len(extra) > 0 {
		doc.Extra = extra
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		checkThreshold(doc, *threshold)
		return
	}

	w := newTable()
	if oldPath == "" {
		w.row("benchmark", "metric", "value")
		for _, jb := range doc.Benchmarks {
			for _, unit := range sortedUnits(jb.New) {
				w.row(jb.Name, unit, fmt.Sprintf("%.6g", jb.New[unit]))
			}
		}
	} else {
		w.row("benchmark", "metric", "old", "new", "delta")
		for _, r := range diffRows(doc) {
			w.row(r...)
		}
		if doc.GeomeanSpeedup > 0 {
			w.row("GEOMEAN", "", "", "", fmt.Sprintf("%.2fx", doc.GeomeanSpeedup))
		}
	}
	w.flush(os.Stdout)
	checkThreshold(doc, *threshold)
}

// buildDoc assembles the comparison: benchmarks in new-file order, then
// any present only in the old file (sorted) so a removed benchmark is
// still visible as a one-sided row rather than silently vanishing. The
// speedup and the geomean cover the benchmarks present on both sides.
func buildDoc(oldB, newB map[string]bench, order []string) jsonDoc {
	var doc jsonDoc
	logSum, logN := 0.0, 0
	for _, name := range order {
		nb := newB[name]
		jb := jsonBench{Name: name, New: nb.metrics, Headline: headline(nb)}
		if ob, ok := oldB[name]; ok {
			jb.Old = ob.metrics
			o, n := ob.metrics[jb.Headline], nb.metrics[jb.Headline]
			if o > 0 && n > 0 {
				jb.Speedup = o / n
				logSum += math.Log(jb.Speedup)
				logN++
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, jb)
	}
	var oldOnly []string
	for name := range oldB {
		if _, ok := newB[name]; !ok {
			oldOnly = append(oldOnly, name)
		}
	}
	sort.Strings(oldOnly)
	for _, name := range oldOnly {
		ob := oldB[name]
		doc.Benchmarks = append(doc.Benchmarks, jsonBench{Name: name, Old: ob.metrics, Headline: headline(ob)})
	}
	if logN > 0 {
		doc.GeomeanSpeedup = math.Exp(logSum / float64(logN))
	}
	return doc
}

// diffRows renders the before/after table body. A metric present on only
// one side gets a one-sided row ("-" on the missing side, "old only" /
// "new only" in the delta column) instead of being dropped.
func diffRows(doc jsonDoc) [][]string {
	var rows [][]string
	for _, jb := range doc.Benchmarks {
		units := map[string]bool{}
		for u := range jb.Old {
			units[u] = true
		}
		for u := range jb.New {
			units[u] = true
		}
		sorted := make([]string, 0, len(units))
		for u := range units {
			sorted = append(sorted, u)
		}
		sort.Strings(sorted)
		for _, unit := range sorted {
			o, haveOld := jb.Old[unit]
			n, haveNew := jb.New[unit]
			switch {
			case !haveOld:
				rows = append(rows, []string{jb.Name, unit, "-", fmt.Sprintf("%.6g", n), "new only"})
			case !haveNew:
				rows = append(rows, []string{jb.Name, unit, fmt.Sprintf("%.6g", o), "-", "old only"})
			default:
				delta := "~"
				if o > 0 {
					delta = fmt.Sprintf("%+.1f%%", (n-o)/o*100)
					if unit == jb.Headline && n > 0 {
						delta += fmt.Sprintf(" (%.2fx)", o/n)
					}
				}
				rows = append(rows, []string{jb.Name, unit, fmt.Sprintf("%.6g", o), fmt.Sprintf("%.6g", n), delta})
			}
		}
	}
	return rows
}

// checkThreshold turns benchdiff into a CI gate: with -threshold set and a
// before/after pair compared, a geomean speedup below 1-threshold% is a
// regression and the process exits non-zero.
func checkThreshold(doc jsonDoc, pct float64) {
	if pct <= 0 || doc.OldFile == "" || doc.GeomeanSpeedup <= 0 {
		return
	}
	floor := 1 - pct/100
	if doc.GeomeanSpeedup < floor {
		fmt.Fprintf(os.Stderr,
			"benchdiff: geomean speedup %.3fx regresses more than %.1f%% (floor %.3fx)\n",
			doc.GeomeanSpeedup, pct, floor)
		os.Exit(1)
	}
}

func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// table is a minimal column-aligned writer.
type table struct{ rows [][]string }

func newTable() *table { return &table{} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush(w *os.File) {
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			pad := widths[i] - len(c)
			fmt.Fprint(w, c, strings.Repeat(" ", pad+2))
		}
		fmt.Fprintln(w)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
