// Command checktrace validates a Chrome trace_event JSON file produced by
// cmd/report -trace: it must parse, contain at least one complete ("X")
// event, and every event must carry a name. verify.sh runs it as the
// observability smoke gate.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checktrace <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	if len(data) == 0 {
		fatal(fmt.Errorf("%s is empty", os.Args[1]))
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("%s: invalid JSON: %w", os.Args[1], err))
	}
	if len(doc.TraceEvents) == 0 {
		fatal(fmt.Errorf("%s has no traceEvents", os.Args[1]))
	}
	complete := 0
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			fatal(fmt.Errorf("%s: event %d has no name", os.Args[1], i))
		}
		if ev.Phase == "X" {
			complete++
		}
	}
	if complete == 0 {
		fatal(fmt.Errorf("%s has no complete (ph=X) events", os.Args[1]))
	}
	fmt.Printf("checktrace: %s ok (%d events, %d complete)\n",
		os.Args[1], len(doc.TraceEvents), complete)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checktrace:", err)
	os.Exit(1)
}
